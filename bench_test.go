// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact, at a reduced request budget so the whole
// suite runs in minutes), plus microbenchmarks of the load-bearing
// primitives. Run with:
//
//	go test -bench=. -benchmem
package idaflash_test

import (
	"io"
	"testing"

	"idaflash"
	"idaflash/internal/coding"
	"idaflash/internal/experiments"
	"idaflash/internal/sim"
	"idaflash/internal/workload"
)

// benchRequests is the per-trace request budget for the experiment
// benchmarks: large enough for every mechanism (refresh cycles, IDA duty,
// queueing) to engage, small enough to keep the suite fast.
const benchRequests = 2500

// benchExperiment runs one full experiment per iteration on a fresh
// (memoizing) runner, and prints its table to io.Discard so rendering is
// included.
func benchExperiment(b *testing.B, run func(*experiments.Runner) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Requests: benchRequests})
		t, err := run(r)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Fprint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates the workload characterization (Table III).
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, experiments.TableIII) }

// BenchmarkFigure4 regenerates the read-distribution breakdown (Figure 4).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, experiments.Figure4) }

// BenchmarkFigure8 regenerates the headline error-rate sweep (Figure 8).
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, experiments.Figure8) }

// BenchmarkTableIV regenerates the refresh overhead audit (Table IV).
func BenchmarkTableIV(b *testing.B) { benchExperiment(b, experiments.TableIV) }

// BenchmarkFigure9 regenerates the delta-tR sensitivity sweep (Figure 9).
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, experiments.Figure9) }

// BenchmarkFigure10 regenerates the throughput comparison (Figure 10).
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, experiments.Figure10) }

// BenchmarkFigure11 regenerates the lifetime/read-retry study (Figure 11).
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, experiments.Figure11) }

// BenchmarkTableV regenerates the MLC device study (Table V).
func BenchmarkTableV(b *testing.B) { benchExperiment(b, experiments.TableV) }

// BenchmarkFigure6 regenerates the QLC coding table and device extension
// (Figure 6).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, experiments.Figure6) }

// BenchmarkBlockUsage regenerates the Section III-C block accounting.
func BenchmarkBlockUsage(b *testing.B) { benchExperiment(b, experiments.BlockUsage) }

// BenchmarkSingleRun measures one full baseline simulation (prefill,
// aging, timed replay; trace generation is cached across iterations by
// workload.DefaultTraceCache, as it is across the runs of a sweep).
func BenchmarkSingleRun(b *testing.B) {
	p, err := idaflash.ProfileByName("hm_1", benchRequests)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := idaflash.RunWorkload(p, idaflash.Baseline()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleRunIDA measures one full IDA-E20 simulation.
func BenchmarkSingleRunIDA(b *testing.B) {
	p, err := idaflash.ProfileByName("hm_1", benchRequests)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := idaflash.RunWorkload(p, idaflash.IDA(0.2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodingMerge measures the IDA merge lookup for every TLC validity
// mask. Schemes precompute all 2^bits merges at construction, so the
// hot-path cost is a table index — CI gates this at zero allocations.
func BenchmarkCodingMerge(b *testing.B) {
	tlc := coding.NewGray(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for mask := coding.ValidMask(0); mask < 8; mask++ {
			tlc.Merge(mask)
		}
	}
}

// BenchmarkCodingPlan measures the Table I wordline-plan lookup, precomputed
// like the merges; CI gates this at zero allocations too.
func BenchmarkCodingPlan(b *testing.B) {
	tlc := coding.NewGray(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for mask := coding.ValidMask(0); mask < 8; mask++ {
			tlc.PlanWordline(mask)
		}
	}
}

// BenchmarkEngine measures the raw discrete-event engine throughput.
func BenchmarkEngine(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run()
}

// BenchmarkTraceGeneration measures synthetic trace generation.
func BenchmarkTraceGeneration(b *testing.B) {
	p := workload.Profile{Name: "bench", ReadRatio: 0.9, MeanReadKB: 32, ReadDataRatio: 0.9, Requests: 10000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures a fully warm single run: the aged
// device state is restored from the in-memory snapshot store instead of
// replaying prefill, the aging preamble, and warmup. The gap to
// BenchmarkSingleRunIDA is the preamble cost the snapshot path eliminates.
func BenchmarkSnapshotRestore(b *testing.B) {
	p, err := idaflash.ProfileByName("hm_1", benchRequests)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the store (and the trace cache) before the timer.
	if _, err := idaflash.RunWorkload(p, idaflash.IDA(0.2)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idaflash.RunWorkload(p, idaflash.IDA(0.2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFarmThroughput measures sustained runs/sec with GOMAXPROCS
// parallel workers replaying warm-store simulations, the farm's steady
// state: every worker restores its aged device from the shared snapshot
// store and checks its simulation state out of the shared device arena.
// This is the end-to-end number the run-arena layer exists to move.
func BenchmarkFarmThroughput(b *testing.B) {
	p, err := idaflash.ProfileByName("hm_1", benchRequests)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the snapshot store and trace cache before the timer.
	if _, err := idaflash.RunWorkload(p, idaflash.IDA(0.2)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := idaflash.RunWorkload(p, idaflash.IDA(0.2)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkFigure8Snapshotted regenerates the headline sweep with every
// profile's snapshot already captured, the steady state of an experiment
// sweep iterated during development: all system variants restore their aged
// devices instead of re-aging them.
func BenchmarkFigure8Snapshotted(b *testing.B) {
	warm := experiments.NewRunner(experiments.Options{Requests: benchRequests})
	if _, err := experiments.Figure8(warm); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchExperiment(b, experiments.Figure8)
}

// BenchmarkAblations regenerates the design-choice ablation table.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, experiments.Ablations) }

// BenchmarkWriteInterference regenerates the write-intensive follow-up
// analysis (Section III-C).
func BenchmarkWriteInterference(b *testing.B) { benchExperiment(b, experiments.WriteInterference) }

// BenchmarkVendor232 regenerates the vendor 2-3-2 coding comparison.
func BenchmarkVendor232(b *testing.B) { benchExperiment(b, experiments.Vendor232) }
